// Trace export, validation, and analysis: -trace runs one instrumented
// scenario and writes a Chrome trace-event file (load it at
// ui.perfetto.dev or chrome://tracing), -trace-summary prints the top
// spans by total/self time per subsystem (-top caps the table),
// -validate-trace structurally checks an exported file (the CI smoke
// step runs it against a short hub run), and -trace-analyze runs the
// traceview flame/critical-path analytics over an exported file.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ibcbench/internal/experiments"
	"ibcbench/internal/netem"
	"ibcbench/internal/obs"
	"ibcbench/internal/topo"
	"ibcbench/internal/tracecheck"
	"ibcbench/internal/traceview"
)

// runTraceCmd is the trace subcommand, covering all four trace modes:
//
//	ibcbench trace -out trace.json -topology hub:3 [-summary] [-store DIR]
//	ibcbench trace -summary -topology hub:3     # tables only, no file
//	ibcbench trace -validate trace.json         # structural check
//	ibcbench trace -analyze trace.json -top 30  # flame + critical path
func runTraceCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ibcbench trace", flag.ContinueOnError)
	var (
		outPath    = fs.String("out", "", "write the instrumented run's Chrome trace-event file (Perfetto-loadable) here")
		summary    = fs.Bool("summary", false, "print the top spans by total/self time per subsystem")
		checkPath  = fs.String("validate", "", "structurally validate this exported trace file and exit")
		anaPath    = fs.String("analyze", "", "analyze this exported trace file (flame tree + critical-path tables) and exit")
		topN       = fs.Int("top", 20, "row cap for -summary and -analyze tables (0 = unlimited)")
		topology   = fs.String("topology", "hub:4", "instrumented scenario graph: two|line:n|hub:n|mesh:n")
		rate       = fs.Int("rate", 20, "per-edge input rate (rps)")
		forwarding = fs.Bool("forwarding", false, "route multi-hop traffic through the packet-forward middleware")
		seed       = fs.Int64("seed", 42, "RNG seed of the traced run")
		windows    = fs.Int("windows", 0, "submission block windows (0 = paper default)")
		regions    = fs.String("regions", "", "geo region preset: 3wan|hubspoke:n|uniform:k (\"\" = uniform WAN)")
		storeDir   = fs.String("store", "", "archive the traced result (trace attached) into this experiment-store directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *checkPath != "" {
		return runValidateTrace(*checkPath, w)
	}
	if *anaPath != "" {
		return runTraceAnalyze(*anaPath, *topN, w)
	}
	if *outPath == "" && !*summary && *storeDir == "" {
		return fmt.Errorf("usage: ibcbench trace -out trace.json|-summary|-validate FILE|-analyze FILE [flags]")
	}
	opt := experiments.Options{Seeds: 1, Windows: *windows, Regions: *regions}
	cfg := map[string]any{
		"experiment": "trace", "seeds": 1, "windows": *windows,
		"transfers": 0, "seed": *seed, "topology": *topology,
		"rate": *rate, "regions": *regions, "forwarding": *forwarding,
		"validators": "", "parallel": 0,
		"netem": netem.DefaultWAN(),
	}
	return runTrace(opt, *topology, *rate, *forwarding, *seed, *outPath, *summary, *topN, *storeDir, cfg, w)
}

// runTrace executes one seed of the topo scenario with observability
// attached, optionally writes the Chrome trace and/or prints the span
// summary, and renders the run result like a plain topo run would.
// With storeDir the result is archived (provenance-stamped) with the
// trace attached, validated and badged exactly like a server-side
// ingest.
func runTrace(opt experiments.Options, topology string, rate int, forwarded bool,
	seed int64, tracePath string, summary bool, top int, storeDir string, cfg map[string]any, w io.Writer) error {
	sc, err := experiments.BuildTopologyScenario(opt, topology, rate, forwarded)
	if err != nil {
		return err
	}
	o := obs.New()
	sc.Deploy.Obs = o
	res, err := sc.Run(seed)
	if err != nil {
		return err
	}
	res.Render(w)
	var trace bytes.Buffer
	if tracePath != "" || storeDir != "" {
		if err := o.Tracer.WriteChrome(&trace); err != nil {
			return fmt.Errorf("export trace: %w", err)
		}
	}
	if tracePath != "" {
		if err := os.WriteFile(tracePath, trace.Bytes(), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", tracePath, err)
		}
		fmt.Fprintf(os.Stderr, "trace (%d events) written to %s\n", o.Tracer.Len(), tracePath)
	}
	if summary {
		fmt.Fprintln(w)
		obs.WriteSummary(w, o.Tracer.Summary(), top)
	}
	if storeDir != "" {
		meta := experiments.CaptureRunMeta()
		res.Provenance = &topo.Provenance{
			Commit:    meta.Commit,
			GoVersion: meta.GoVersion,
			Time:      time.Now().UTC().Format(time.RFC3339),
		}
		payload, err := json.MarshalIndent(map[string]any{"config": cfg, "result": res}, "", "  ")
		if err != nil {
			return fmt.Errorf("marshal traced result: %w", err)
		}
		_, verr := tracecheck.Validate(trace.Bytes())
		return archiveRun(storeDir, "trace", payload, trace.Bytes(), verr == nil, os.Stderr)
	}
	return nil
}

// runTraceAnalyze runs the traceview analytics over an exported trace
// file: the aggregated flame span tree (total/self per subsystem),
// then the per-packet critical-path tables — per-step latency
// distributions grouped by edge and route hop, each step's share of
// end-to-end latency, and the explicit unattributed residual. The
// output is deterministic: same trace bytes, same tables.
func runTraceAnalyze(path string, top int, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	events, err := traceview.FromChrome(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Fprintf(w, "# %s: %d event(s)\n\n", path, len(events))
	traceview.WriteFlame(w, traceview.Flame(events), top)
	fmt.Fprintln(w)
	traceview.WriteCritPath(w, traceview.CriticalPath(events))
	return nil
}

// runValidateTrace structurally validates an exported trace via
// tracecheck.Validate: the file must parse as a trace-event document,
// complete spans need non-negative timestamps and durations, and every
// async trace must open and close in order on each (cat, id) pair. The
// first violation exits nonzero with the offending event's line and
// byte offset — the exporter writes one event per line, so the line
// number points at the exact event.
func runValidateTrace(path string, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	stats, err := tracecheck.Validate(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Fprintf(w, "%s: OK (%d events: %s)\n", path, stats.Events, stats.PhaseList())
	return nil
}
