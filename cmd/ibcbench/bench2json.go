// bench2json converts `go test -bench` text output into the same JSON
// metric-document shape -out produces, so hot-path benchmark runs can be
// tracked (and diffed warn-only against a committed baseline) by the CI
// bench job: `ibcbench -bench2json bench_raw.txt -out BENCH_ci.json`.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// runBench2JSONCmd is the bench2json subcommand:
//
//	ibcbench bench2json bench_raw.txt [-out BENCH.json]
func runBench2JSONCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ibcbench bench2json", flag.ContinueOnError)
	outPath := fs.String("out", "", "write the JSON metrics document here (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("usage: ibcbench bench2json bench.txt [-out BENCH.json]")
	}
	txtPath := fs.Arg(0)
	if fs.NArg() > 1 {
		if err := fs.Parse(fs.Args()[1:]); err != nil {
			return err
		}
		if fs.NArg() != 0 {
			return fmt.Errorf("usage: ibcbench bench2json bench.txt [-out BENCH.json]")
		}
	}
	return runBench2JSON(txtPath, *outPath, w)
}

// benchLineRE matches one result line: name, iteration count, then the
// measurement fields.
var benchLineRE = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

// runBench2JSON parses the bench output at txtPath and writes the JSON
// document to outPath ("" = w). Repeated runs of one benchmark (-count)
// are averaged per unit.
func runBench2JSON(txtPath, outPath string, w io.Writer) error {
	f, err := os.Open(txtPath)
	if err != nil {
		return fmt.Errorf("bench2json: %w", err)
	}
	defer f.Close()
	// The conversion runs on the machine that ran the benchmarks, so the
	// current GOMAXPROCS matches the "-N" name suffix go test appended.
	doc, err := parseBenchOutput(f, runtime.GOMAXPROCS(0))
	if err != nil {
		return err
	}
	if len(doc) == 0 {
		return fmt.Errorf("bench2json: no benchmark result lines in %s", txtPath)
	}
	data, err := json.MarshalIndent(map[string]any{"bench": doc}, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" {
		_, err = w.Write(data)
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return fmt.Errorf("bench2json: write %s: %w", outPath, err)
	}
	fmt.Fprintf(os.Stderr, "bench metrics written to %s\n", outPath)
	return nil
}

// parseBenchOutput folds result lines into name -> unit -> mean value.
// procs is the GOMAXPROCS the benchmarks ran under: go test appends a
// "-<procs>" suffix to every benchmark name when procs > 1, which is
// stripped so documents from machines with different core counts (a
// laptop baseline vs a CI runner) diff by stable names. A trailing
// "-<digits>" that is not the procs count (vals-13) is part of the name
// and kept.
func parseBenchOutput(r io.Reader, procs int) (map[string]map[string]float64, error) {
	type acc struct {
		sum float64
		n   int
	}
	sums := make(map[string]map[string]*acc)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLineRE.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := m[1]
		if procs > 1 {
			name = strings.TrimSuffix(name, fmt.Sprintf("-%d", procs))
		}
		fields := strings.Fields(m[3])
		// Measurements come in "value unit" pairs (ns/op, B/op,
		// allocs/op, b.ReportMetric units).
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bench2json: bad value %q for %s", fields[i], name)
			}
			if sums[name] == nil {
				sums[name] = make(map[string]*acc)
			}
			unit := fields[i+1]
			if sums[name][unit] == nil {
				sums[name][unit] = &acc{}
			}
			sums[name][unit].sum += v
			sums[name][unit].n++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench2json: %w", err)
	}
	out := make(map[string]map[string]float64, len(sums))
	for name, units := range sums {
		out[name] = make(map[string]float64, len(units))
		for unit, a := range units {
			out[name][unit] = a.sum / float64(a.n)
		}
	}
	return out, nil
}
