package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ibcbench/internal/experiments"
)

// TestTraceExportRoundTrip runs the CLI's trace path end to end: a short
// instrumented hub run exports a Chrome trace that the structural
// validator accepts, and the summary table names the expected
// subsystems.
func TestTraceExportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out bytes.Buffer
	opt := experiments.Options{Seeds: 1, Windows: 2}
	if err := runTrace(opt, "hub:3", 3, false, 7, path, true, 20, "", nil, &out); err != nil {
		t.Fatal(err)
	}
	var check bytes.Buffer
	if err := runValidateTrace(path, &check); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(check.String(), "OK") {
		t.Fatalf("validator output %q", check.String())
	}
	for _, want := range []string{"chain", "relayer", "block", "scan"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("summary misses %q:\n%s", want, out.String())
		}
	}
}

// TestTraceAnalyzeRoundTrip: an exported forwarded-route trace feeds
// the -trace-analyze path, which prints the flame span tree and the
// critical-path tables deterministically.
func TestTraceAnalyzeRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out bytes.Buffer
	opt := experiments.Options{Seeds: 1, Windows: 2}
	if err := runTrace(opt, "line:3", 3, true, 7, path, false, 20, "", nil, &out); err != nil {
		t.Fatal(err)
	}
	analyze := func() string {
		var buf bytes.Buffer
		if err := runTraceAnalyze(path, 15, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	got := analyze()
	for _, want := range []string{"span tree", "chain", "# critical path", "end-to-end", "attributed"} {
		if !strings.Contains(got, want) {
			t.Fatalf("analysis misses %q:\n%s", want, got)
		}
	}
	if got != analyze() {
		t.Fatal("same trace produced different analysis output")
	}
	if err := runTraceAnalyze(filepath.Join(t.TempDir(), "missing.json"), 15, io.Discard); err == nil {
		t.Fatal("analyzer accepted a missing file")
	}
}

// TestValidateTraceRejectsBrokenDocs pins the validator's failure modes.
func TestValidateTraceRejectsBrokenDocs(t *testing.T) {
	cases := map[string]string{
		"not-json":      `{"traceEvents": [`,
		"empty":         `{"traceEvents": []}`,
		"unknown-phase": `{"traceEvents": [{"name":"x","ph":"Q","ts":0}]}`,
		"negative-dur":  `{"traceEvents": [{"name":"x","ph":"X","ts":1,"dur":-2}]}`,
		"unbalanced":    `{"traceEvents": [{"name":"p","ph":"b","cat":"pkt","id":"0x1","ts":0}]}`,
		"end-no-begin":  `{"traceEvents": [{"name":"p","ph":"e","cat":"pkt","id":"0x1","ts":0}]}`,
		"orphan-async":  `{"traceEvents": [{"name":"p","ph":"n","cat":"pkt","id":"0x1","ts":0}]}`,
	}
	dir := t.TempDir()
	for name, doc := range cases {
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := runValidateTrace(path, &out); err == nil {
			t.Fatalf("%s: validator accepted a broken document", name)
		}
	}
}
