package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ibcbench/internal/scenario"
)

func TestUnknownSubcommand(t *testing.T) {
	if err := run([]string{"nope"}); err == nil || !strings.Contains(err.Error(), "unknown subcommand") {
		t.Fatalf("expected unknown-subcommand error, got %v", err)
	}
}

// The help page is generated from the registries — every experiment
// entry and registered scenario must appear.
func TestHelpListsRegistries(t *testing.T) {
	var buf bytes.Buffer
	printUsage(&buf)
	out := buf.String()
	for _, want := range []string{"sweep", "search", "bench2json", "meshscale", "votescale", "quickstart", "timeoutstorm"} {
		if !strings.Contains(out, want) {
			t.Errorf("help output missing %q", want)
		}
	}
}

func TestRunScenarioCmdFromFile(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "report.json")
	var buf bytes.Buffer
	err := runScenarioCmd([]string{
		"-scenario", "../../examples/scenarios/quickstart.json", "-out", outPath,
	}, &buf)
	if err != nil {
		t.Fatalf("run quickstart: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "assertions: 3 checked, all held") {
		t.Errorf("missing assertion verdict in output:\n%s", buf.String())
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep scenario.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if !rep.Passed() || rep.Result == nil || rep.Spec.Name != "quickstart" {
		t.Errorf("unexpected report: passed=%v result=%p name=%q", rep.Passed(), rep.Result, rep.Spec.Name)
	}
}

// -print must emit the canonical encoding of the registered spec —
// what a user commits to examples/ after tweaking a builtin.
func TestRunScenarioCmdPrint(t *testing.T) {
	var buf bytes.Buffer
	if err := runScenarioCmd([]string{"-name", "failover", "-print"}, &buf); err != nil {
		t.Fatal(err)
	}
	e, ok := scenario.Lookup("failover")
	if !ok {
		t.Fatal("failover not registered")
	}
	want, err := scenario.Encode(e.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-print output differs from canonical encoding:\n%s", buf.String())
	}
}

func TestRunScenarioCmdFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-scenario", "a.json", "-name", "hub"},
		{"-name", "no-such-scenario"},
	} {
		if err := runScenarioCmd(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}

func TestSuiteLint(t *testing.T) {
	var buf bytes.Buffer
	if err := runSuiteCmd([]string{"-lint"}, &buf); err != nil {
		t.Fatalf("suite -lint: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "lint quickstart: ok") || !strings.Contains(out, "lint clean") {
		t.Errorf("unexpected lint output:\n%s", out)
	}
}

func TestSuiteShort(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several scenarios")
	}
	var buf bytes.Buffer
	if err := runSuiteCmd([]string{"-short"}, &buf); err != nil {
		t.Fatalf("suite -short: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "PASS quickstart") || !strings.Contains(out, "scenario(s) passed") {
		t.Errorf("unexpected suite output:\n%s", out)
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("short suite reported a failure:\n%s", out)
	}
}

// The CI search smoke in miniature: the planted fixture must yield a
// counterexample within the budget, the minimal spec must land in
// -out, and the command only exits zero because -expect-violation
// says finding one is the point.
func TestSearchCmdPlantedFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a search batch")
	}
	outPath := filepath.Join(t.TempDir(), "minimal.json")
	var buf bytes.Buffer
	err := runSearchCmd([]string{
		"-scenario", "../../internal/scenario/testdata/planted.json",
		"-budget", "4", "-out", outPath, "-expect-violation",
	}, &buf)
	if err != nil {
		t.Fatalf("search: %v\n%s", err, buf.String())
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	min, err := scenario.Parse(data)
	if err != nil {
		t.Fatalf("minimal spec does not parse: %v", err)
	}
	if len(min.Chaos) == 0 || min.Faults != nil || min.Seed == 0 {
		t.Errorf("minimal spec not committable: chaos=%d faults=%v seed=%d", len(min.Chaos), min.Faults, min.Seed)
	}
	// Without -expect-violation the same find is a nonzero exit.
	err = runSearchCmd([]string{
		"-scenario", "../../internal/scenario/testdata/planted.json", "-budget", "4",
	}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "counterexample found") {
		t.Errorf("expected counterexample-found error, got %v", err)
	}
}

func TestDiffCmdPositionalsAndTrailingFlags(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string, v float64) string {
		p := filepath.Join(dir, name)
		doc := map[string]any{"config": map[string]any{"experiment": "topo"}, "topo": map[string]any{"throughput": v}}
		data, _ := json.Marshal(doc)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	oldP, newP := mk("old.json", 100), mk("new.json", 101)
	var buf bytes.Buffer
	if err := runDiffCmd([]string{oldP, newP, "-fail-on-change", "10"}, &buf); err != nil {
		t.Fatalf("diff within tolerance: %v\n%s", err, buf.String())
	}
	if err := runDiffCmd([]string{oldP}, &bytes.Buffer{}); err == nil {
		t.Error("one positional: expected usage error")
	}
	if err := runDiffCmd([]string{oldP, mk("worse.json", 200), "-fail-on-change", "10"}, &bytes.Buffer{}); err == nil {
		t.Error("big move with armed gate: expected an error")
	}
}

func TestBench2JSONCmd(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(raw, []byte("BenchmarkThing-8   10   1500 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "bench.json")
	if err := runBench2JSONCmd([]string{raw, "-out", outPath}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "BenchmarkThing") {
		t.Errorf("converted doc missing benchmark name:\n%s", data)
	}
	if err := runBench2JSONCmd(nil, &bytes.Buffer{}); err == nil {
		t.Error("no positional: expected usage error")
	}
}

// The trace subcommand's record->validate->analyze loop on a small run.
func TestTraceCmdLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an instrumented scenario")
	}
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	var buf bytes.Buffer
	if err := runTraceCmd([]string{"-out", tracePath, "-topology", "two", "-rate", "2", "-windows", "1", "-seed", "7"}, &buf); err != nil {
		t.Fatalf("trace record: %v", err)
	}
	var check bytes.Buffer
	if err := runTraceCmd([]string{"-validate", tracePath}, &check); err != nil {
		t.Fatalf("trace validate: %v\n%s", err, check.String())
	}
	if !strings.Contains(check.String(), "OK") {
		t.Errorf("unexpected validate output: %s", check.String())
	}
	var ana bytes.Buffer
	if err := runTraceCmd([]string{"-analyze", tracePath, "-top", "5"}, &ana); err != nil {
		t.Fatalf("trace analyze: %v", err)
	}
	if !strings.Contains(ana.String(), "span tree") {
		t.Errorf("unexpected analyze output:\n%s", ana.String())
	}
	if err := runTraceCmd(nil, &bytes.Buffer{}); err == nil {
		t.Error("no mode flag: expected usage error")
	}
}
