// The scenario entry points: `ibcbench run` executes one declarative
// spec (a file or a registry name) and checks its assertions,
// `ibcbench suite` runs the whole registered library, and `ibcbench
// search` explores a spec's declared fault space for assertion
// violations and shrinks what it finds to a minimal replay.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ibcbench/internal/experiments"
	"ibcbench/internal/metrics"
	"ibcbench/internal/scenario"
)

// loadSpec resolves the shared -scenario/-name flag pair: a spec file
// on disk or a registered scenario by name, exactly one of the two.
func loadSpec(path, name string) (scenario.Spec, error) {
	switch {
	case path != "" && name != "":
		return scenario.Spec{}, fmt.Errorf("ibcbench: -scenario and -name are mutually exclusive")
	case path != "":
		data, err := os.ReadFile(path)
		if err != nil {
			return scenario.Spec{}, err
		}
		s, err := scenario.Parse(data)
		if err != nil {
			return scenario.Spec{}, fmt.Errorf("%s: %w", path, err)
		}
		return s, nil
	case name != "":
		e, ok := scenario.Lookup(name)
		if !ok {
			return scenario.Spec{}, fmt.Errorf("ibcbench: unknown scenario %q (registered: %s)", name, strings.Join(scenario.Names(), ", "))
		}
		return e.Spec, nil
	default:
		return scenario.Spec{}, fmt.Errorf("ibcbench: need -scenario FILE or -name NAME")
	}
}

// runScenarioCmd executes one declarative scenario:
//
//	ibcbench run -scenario spec.json [-seed N] [-out report.json] [-store DIR]
//	ibcbench run -name failover
//	ibcbench run -name failover -print   # emit the canonical spec
//
// The process exits nonzero when an assertion is violated;
// -expect-violation inverts that (CI fixtures that must fail).
func runScenarioCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ibcbench run", flag.ContinueOnError)
	var (
		specPath  = fs.String("scenario", "", "scenario spec file (JSON)")
		name      = fs.String("name", "", "registered scenario name (see `ibcbench help`)")
		seed      = fs.Int64("seed", 0, "override the spec's run seed (0 = spec seed, default 1)")
		outPath   = fs.String("out", "", "write the full report (spec, result, verdicts) as JSON to this file")
		storeDir  = fs.String("store", "", "archive the report into this experiment-store directory")
		printSpec = fs.Bool("print", false, "print the canonical spec encoding and exit without running")
		expect    = fs.Bool("expect-violation", false, "exit nonzero unless at least one assertion is violated")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := loadSpec(*specPath, *name)
	if err != nil {
		return err
	}
	if *printSpec {
		data, err := scenario.Encode(s)
		if err != nil {
			return err
		}
		_, err = w.Write(data)
		return err
	}
	rep, err := scenario.Run(s, *seed)
	if err != nil {
		return err
	}
	rep.Render(w)
	if *outPath != "" || *storeDir != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return fmt.Errorf("marshal report: %w", err)
		}
		data = append(data, '\n')
		if *outPath != "" {
			if err := os.WriteFile(*outPath, data, 0o644); err != nil {
				return fmt.Errorf("write %s: %w", *outPath, err)
			}
			fmt.Fprintf(os.Stderr, "report written to %s\n", *outPath)
		}
		if *storeDir != "" {
			if err := archiveRun(*storeDir, "scenario", data, nil, false, os.Stderr); err != nil {
				return err
			}
		}
	}
	switch {
	case *expect && rep.Passed():
		return fmt.Errorf("scenario %s: expected an assertion violation, all %d held", s.Name, len(rep.Assertions))
	case !*expect && !rep.Passed():
		return fmt.Errorf("scenario %s: %d assertion violation(s)", s.Name, len(rep.Violations))
	}
	return nil
}

// runSuiteCmd runs every registered scenario and reports one verdict
// line each:
//
//	ibcbench suite [-short] [-seed N] [-workers N]
//	ibcbench suite -lint     # round-trip/compile lint only, no runs
func runSuiteCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ibcbench suite", flag.ContinueOnError)
	var (
		short   = fs.Bool("short", false, "run only the scenarios marked cheap enough for smoke suites")
		lint    = fs.Bool("lint", false, "lint the registry (validate, compile, canonical round trip) without running anything")
		seed    = fs.Int64("seed", 0, "override every spec's run seed (0 = each spec's own)")
		workers = fs.Int("workers", 0, "scenario worker pool size (0 = all cores, 1 = serial)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := scenario.Names()
	if *lint {
		failed := 0
		for _, n := range names {
			if err := scenario.Lint(n); err != nil {
				failed++
				fmt.Fprintf(w, "lint %s: %v\n", n, err)
				continue
			}
			fmt.Fprintf(w, "lint %s: ok\n", n)
		}
		if failed > 0 {
			return fmt.Errorf("suite: %d of %d scenario(s) failed lint", failed, len(names))
		}
		fmt.Fprintf(w, "suite: %d scenario(s) lint clean\n", len(names))
		return nil
	}
	if *short {
		kept := names[:0]
		for _, n := range names {
			if e, _ := scenario.Lookup(n); e.Short {
				kept = append(kept, n)
			}
		}
		names = kept
	}
	type verdict struct {
		rep *scenario.Report
		err error
	}
	verdicts := experiments.ParallelMap(names, *workers, func(n string) verdict {
		e, _ := scenario.Lookup(n)
		rep, err := scenario.Run(e.Spec, *seed)
		return verdict{rep, err}
	})
	failed := 0
	for i, v := range verdicts {
		switch {
		case v.err != nil:
			failed++
			fmt.Fprintf(w, "FAIL %-12s %v\n", names[i], v.err)
		case !v.rep.Passed():
			failed++
			fmt.Fprintf(w, "FAIL %-12s %d violation(s)\n", names[i], len(v.rep.Violations))
			for _, viol := range v.rep.Violations {
				fmt.Fprintf(w, "     VIOLATION %s\n", viol)
			}
		default:
			done := v.rep.Result.Total[metrics.StatusCompleted] + v.rep.Result.RoutesCompleted
			fmt.Fprintf(w, "PASS %-12s %d assertion(s) held, %d transfer(s)/route(s) completed\n",
				names[i], len(v.rep.Assertions), done)
		}
	}
	if failed > 0 {
		return fmt.Errorf("suite: %d of %d scenario(s) failed", failed, len(names))
	}
	fmt.Fprintf(w, "suite: %d scenario(s) passed\n", len(names))
	return nil
}

// runSearchCmd explores a spec's fault space:
//
//	ibcbench search -scenario spec.json [-budget N] [-seed N] [-out minimal.json]
//
// A found counterexample is shrunk to the smallest violating timeline
// and written as a committable spec (-out, default alongside the
// report on stdout); the process exits nonzero on a find unless
// -expect-violation says that is the point (CI's planted fixture).
func runSearchCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ibcbench search", flag.ContinueOnError)
	var (
		specPath     = fs.String("scenario", "", "scenario spec file (JSON) with a faults block")
		name         = fs.String("name", "", "registered scenario name (see `ibcbench help`)")
		budget       = fs.Int("budget", 0, "candidate timelines to generate and run (0 = 16)")
		seed         = fs.Int64("seed", 0, "timeline-generator seed (0 = 1); the run seed comes from the spec")
		shrinkBudget = fs.Int("shrink-budget", 0, "extra runs the minimizer may spend (0 = 64)")
		workers      = fs.Int("workers", 0, "concurrent candidate runs (0 = all cores, 1 = serial)")
		outPath      = fs.String("out", "", "write the minimal counterexample spec to this file")
		expect       = fs.Bool("expect-violation", false, "exit nonzero unless the search finds a counterexample")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := loadSpec(*specPath, *name)
	if err != nil {
		return err
	}
	res, err := scenario.Search(s, scenario.SearchOptions{
		Budget: *budget, Seed: *seed, Workers: *workers, ShrinkBudget: *shrinkBudget,
	})
	if err != nil {
		return err
	}
	res.Render(w)
	if ce := res.Counterexample; ce != nil {
		data, err := scenario.Encode(ce.Minimal)
		if err != nil {
			return err
		}
		if *outPath != "" {
			if err := os.WriteFile(*outPath, data, 0o644); err != nil {
				return fmt.Errorf("write %s: %w", *outPath, err)
			}
			fmt.Fprintf(w, "minimal reproducing spec written to %s (replay: ibcbench run -scenario %s)\n", *outPath, *outPath)
		} else {
			fmt.Fprintf(w, "minimal reproducing spec (replay with `ibcbench run -scenario <file>`):\n")
			w.Write(data)
		}
		if !*expect {
			return fmt.Errorf("search %s: counterexample found (generator seed %d, candidate %d of %d)",
				res.Spec, res.Seed, ce.Candidate+1, res.Examined)
		}
		return nil
	}
	if *expect {
		return fmt.Errorf("search %s: expected a counterexample, none found in %d candidate(s)", res.Spec, res.Examined)
	}
	return nil
}
