// Command ibcbench is the performance-analysis tool of the paper: it
// deploys the simulated multi-chain testbed, runs the benchmark
// workloads and scenario specs, and prints execution reports for every
// table and figure of the evaluation section.
//
// Usage:
//
//	ibcbench <subcommand> [flags]
//
//	ibcbench sweep -experiment all           # every experiment (slow)
//	ibcbench sweep -experiment fig8 -seeds 5 # one artifact
//	ibcbench sweep -experiment topo -topology hub:4 -rate 20
//	ibcbench run -scenario spec.json         # one declarative scenario
//	ibcbench run -name failover              # a built-in scenario
//	ibcbench suite -short                    # smoke the scenario library
//	ibcbench suite -lint                     # registry round-trip lint
//	ibcbench search -scenario spec.json -budget 32  # seeded chaos search
//	ibcbench trace -out trace.json -topology hub:3  # Perfetto trace
//	ibcbench trace -analyze trace.json -top 30      # flame/critical path
//	ibcbench diff old.json new.json -fail-on-change 10
//	ibcbench bench2json bench.txt -out BENCH.json
//	ibcbench serve -store runs/ -addr :8321  # HTTP dashboard over a store
//
// The original flat-flag invocation (`ibcbench -experiment topo ...`,
// `-trace`, `-diff old new`, `-bench2json`) still works as a deprecated
// alias for the corresponding subcommand and stays byte-identical on
// stdout; the deprecation note goes to stderr.
//
// Sweeps fan (config, seed) executions out over a worker pool
// (-workers, default GOMAXPROCS); results are identical to serial runs.
// With -out, every experiment that ran dumps its result structs — plus
// a config header (topology, region preset, netem config, seed) — to
// one JSON document for cross-PR regression tracking of reproduced
// figures; `ibcbench diff` compares two such documents metric by metric
// and warns when their config headers disagree.
package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"ibcbench/internal/experiments"
	"ibcbench/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// subcommands maps each subcommand to its driver, in help order.
var subcommands = []struct {
	name string
	desc string
	run  func(args []string, w io.Writer) error
}{
	{"run", "execute one declarative scenario spec (-scenario FILE | -name NAME) and check its assertions", runScenarioCmd},
	{"sweep", "run the paper's experiments (-experiment NAME|all); the old flat-flag driver", runSweep},
	{"search", "seeded chaos search over a spec's declared fault space; shrinks violations to a minimal replay", runSearchCmd},
	{"suite", "run (or -lint) every registered scenario and report assertion verdicts", runSuiteCmd},
	{"trace", "record (-out), summarize (-summary), validate (-validate) or analyze (-analyze) a Chrome trace", runTraceCmd},
	{"diff", "compare two result documents metric by metric (old.json new.json [-fail-on-change pct])", runDiffCmd},
	{"serve", "HTTP dashboard + ingest/queue API over an experiment store", runServe},
	{"bench2json", "convert `go test -bench` output to a JSON metrics document", runBench2JSONCmd},
}

func run(args []string) error {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		name, rest := args[0], args[1:]
		if name == "help" {
			printUsage(os.Stdout)
			return nil
		}
		for _, sc := range subcommands {
			if sc.name == name {
				return sc.run(rest, os.Stdout)
			}
		}
		return fmt.Errorf("ibcbench: unknown subcommand %q (see `ibcbench help`)", name)
	}
	// Flat-flag invocation predates the subcommands; it remains the
	// sweep driver (which also hosts the legacy -trace/-diff/-bench2json
	// dispatch flags) so existing scripts keep working byte-identically
	// on stdout. The note must stay on stderr: CI greps sweep stdout.
	fmt.Fprintln(os.Stderr, "note: flat-flag invocation is deprecated; use `ibcbench sweep` (see `ibcbench help`)")
	return runSweep(args, os.Stdout)
}

func printUsage(w io.Writer) {
	fmt.Fprintln(w, "usage: ibcbench <subcommand> [flags]")
	fmt.Fprintln(w, "\nsubcommands (each accepts -h for its flags):")
	for _, sc := range subcommands {
		fmt.Fprintf(w, "  %-11s %s\n", sc.name, sc.desc)
	}
	fmt.Fprintln(w, "\nexperiments (ibcbench sweep -experiment X):")
	for _, e := range experiments.Registry() {
		fmt.Fprintf(w, "  %-11s %s\n", e.Name, e.Desc)
	}
	fmt.Fprintf(w, "  selectors: %s|all\n", strings.Join(experiments.Selectors(), "|"))
	fmt.Fprintln(w, "\nscenarios (ibcbench run -name X; * = in `suite -short`):")
	for _, name := range scenario.Names() {
		e, _ := scenario.Lookup(name)
		mark := " "
		if e.Short {
			mark = "*"
		}
		fmt.Fprintf(w, " %s%-11s %s\n", mark, name, e.Desc)
	}
}
