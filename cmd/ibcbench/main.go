// Command ibcbench is the performance-analysis tool of the paper: it
// deploys the simulated two-chain testbed, runs the benchmark workloads
// and prints execution reports for every table and figure of the
// evaluation section.
//
// Usage:
//
//	ibcbench -experiment all            # everything (slow)
//	ibcbench -experiment fig8 -seeds 5  # one artifact
//	ibcbench -experiment fig12 -transfers 5000
//	ibcbench -experiment topo -topology hub:4 -rate 20
//	ibcbench -experiment topo -forwarding          # routes via packet forwarding
//	ibcbench -experiment forward -topology line:4  # forwarded vs sequential curves
//	ibcbench -experiment topo -regions 3wan        # geo-distributed deployment
//	ibcbench -experiment failover -regions 3wan    # standby takeover vs fault window
//	ibcbench -experiment votescale -topology two   # validator-set scaling sweep
//	ibcbench -experiment topo -validators 16       # 16-validator chains
//	ibcbench -experiment topo -parallel 4          # partitioned intra-run execution
//	ibcbench -experiment meshscale -parallel 8     # serial-vs-parallel speedup grid
//	ibcbench -experiment topo -out results.json    # persist results as JSON
//	ibcbench -diff old.json new.json               # compare two -out files
//	ibcbench -diff old.json new.json -fail-on-change 10   # CI regression gate
//	ibcbench -bench2json bench.txt -out BENCH.json # go-bench output -> JSON doc
//	ibcbench -trace trace.json -topology hub:3     # Perfetto trace of one run
//	ibcbench -trace-summary -topology hub:3        # top spans by total/self time
//	ibcbench -validate-trace trace.json            # structural trace check
//	ibcbench -trace-analyze trace.json -top 30     # flame tree + critical-path tables
//	ibcbench -experiment failover -live :8321      # stream live telemetry to serve
//	ibcbench -experiment topo -cpuprofile cpu.out  # profile the run (go tool pprof)
//	ibcbench -experiment topo -store runs/         # archive the result document
//	ibcbench serve -store runs/ -addr :8321        # HTTP dashboard over the store
//
// Sweeps fan (config, seed) executions out over a worker pool
// (-workers, default GOMAXPROCS); results are identical to serial runs.
// With -out, every experiment that ran dumps its result structs — plus
// a config header (topology, region preset, netem config, seed) — to
// one JSON document for cross-PR regression tracking of reproduced
// figures; -diff compares two such documents metric by metric and
// warns when their config headers disagree.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"ibcbench/internal/experiments"
	"ibcbench/internal/netem"
	"ibcbench/internal/topo"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 && args[0] == "serve" {
		return runServe(args[1:], os.Stdout)
	}
	fs := flag.NewFlagSet("ibcbench", flag.ContinueOnError)
	var (
		exp        = fs.String("experiment", "all", "fig6|fig7|table1|fig8|fig9|fig10|fig11|fig12|fig13|gas|ws|topo|forward|failover|votescale|meshscale|all")
		seeds      = fs.Int("seeds", 3, "executions per configuration (paper: 20)")
		windows    = fs.Int("windows", 0, "submission block windows (0 = paper default)")
		transfers  = fs.Int("transfers", 5000, "transfers for fig12/fig13")
		seed       = fs.Int64("seed", 42, "base RNG seed")
		topology   = fs.String("topology", "hub:4", "topo/forward/failover experiment graph: two|line:n|hub:n|mesh:n")
		rate       = fs.Int("rate", 20, "per-edge input rate (rps) for topo/failover; transfers per route for forward")
		regions    = fs.String("regions", "", "geo region preset for topo/failover deployments: 3wan|hubspoke:n|uniform:k (\"\" = the paper's uniform WAN)")
		validators = fs.String("validators", "", "validator-set sizes: votescale sweeps the comma list (default 4,8,12,16,24,32); other topology experiments use the first value (\"\" = the paper's 5)")
		forwarding = fs.Bool("forwarding", false, "run topo multi-hop routes through the packet-forward middleware instead of sequential legs")
		workers    = fs.Int("workers", 0, "sweep worker pool size (0 = all cores, 1 = serial)")
		parallel   = fs.Int("parallel", 0, "intra-run partitioned workers: split each simulation's chains over N OS workers with byte-identical results (0/1 = serial scheduler); also the worker count of -experiment meshscale")
		out        = fs.String("out", "", "write every experiment's result as JSON to this file (cross-PR regression tracking)")
		storeDir   = fs.String("store", "", "archive the result document (the -out payload) into this experiment-store directory; browse it with `ibcbench serve -store DIR`")
		diffOld    = fs.String("diff", "", "compare this -out result file against the positional argument and exit")
		failPct    = fs.Float64("fail-on-change", -1, "with -diff: exit nonzero when any metric moves beyond this tolerance in percent (negative = report only; skipped when the files' config headers mismatch)")
		benchTxt   = fs.String("bench2json", "", "convert `go test -bench` output in this file to a JSON metrics document (written to -out, default stdout) and exit")
		tracePath  = fs.String("trace", "", "run one instrumented -topology scenario and write a Chrome trace-event file (Perfetto-loadable) here, then exit")
		traceSum   = fs.Bool("trace-summary", false, "with or without -trace: run one instrumented scenario and print the top spans by total/self time per subsystem")
		traceCheck = fs.String("validate-trace", "", "structurally validate a -trace output file (JSON shape, span timing, async begin/end balance) and exit")
		traceAna   = fs.String("trace-analyze", "", "analyze an exported -trace file: flame span tree plus per-packet critical-path latency tables, then exit")
		topN       = fs.Int("top", 20, "row cap for -trace-summary and -trace-analyze tables (0 = unlimited)")
		liveAddr   = fs.String("live", "", "stream live run telemetry to an `ibcbench serve` address (host:port) and archive the result there when the run completes")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the experiment run to this file (go tool pprof)")
		memProfile = fs.String("memprofile", "", "write a heap profile taken after the experiment run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *benchTxt != "" {
		return runBench2JSON(*benchTxt, *out, os.Stdout)
	}
	if *traceCheck != "" {
		return runValidateTrace(*traceCheck, os.Stdout)
	}
	if *traceAna != "" {
		return runTraceAnalyze(*traceAna, *topN, os.Stdout)
	}
	if *diffOld != "" {
		if fs.NArg() < 1 {
			return fmt.Errorf("usage: ibcbench -diff old.json new.json [-fail-on-change pct]")
		}
		newPath := fs.Arg(0)
		// Flag parsing stops at the positional new.json; pick up trailing
		// flags (-fail-on-change after the file names) with a second pass.
		if fs.NArg() > 1 {
			if err := fs.Parse(fs.Args()[1:]); err != nil {
				return err
			}
			if fs.NArg() != 0 {
				return fmt.Errorf("usage: ibcbench -diff old.json new.json [-fail-on-change pct]")
			}
		}
		return runDiff(*diffOld, newPath, *failPct, os.Stdout)
	}
	valSizes, err := parseValidatorList(*validators)
	if err != nil {
		return err
	}
	opt := experiments.Options{Seeds: *seeds, Windows: *windows, Workers: *workers, Regions: *regions, Parallel: *parallel}
	if len(valSizes) > 0 {
		opt.Validators = valSizes[0]
	}
	// Profiling brackets everything from here on — the simulation work.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "cpu profile written to %s\n", *cpuProfile)
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "heap profile written to %s\n", *memProfile)
		}()
	}
	var lc *liveClient
	if *liveAddr != "" {
		lc = newLiveClient(*liveAddr)
		opt.Live = &topo.LiveConfig{Hook: lc.Hook}
	}
	// The config header identifies what produced a result document;
	// -diff warns field by field when comparing results whose headers
	// disagree, and the store's trend/regression analysis treats runs
	// with differing headers as incompatible trajectories.
	cfgHeader := func() map[string]any {
		return map[string]any{
			"experiment": *exp, "seeds": *seeds, "windows": *windows,
			"transfers": *transfers, "seed": *seed, "topology": *topology,
			"rate": *rate, "regions": *regions, "forwarding": *forwarding,
			"validators": *validators, "parallel": *parallel,
			"netem": netem.DefaultWAN(),
		}
	}
	if *tracePath != "" || *traceSum {
		err := runTrace(opt, *topology, *rate, *forwarding, *seed, *tracePath, *traceSum, *topN,
			*storeDir, cfgHeader(), os.Stdout)
		if lc != nil {
			// The traced run archives locally (-store); just clear the
			// session's live entries on the service.
			lc.Finish("", "", nil)
		}
		return err
	}
	want := func(name string) bool { return *exp == "all" || *exp == name }
	report := map[string]any{}
	record := func(key string, v any) {
		if *out != "" || *storeDir != "" || lc != nil {
			report[key] = v
		}
	}

	if want("fig6") || want("fig7") || want("table1") {
		res := experiments.Tendermint(opt)
		record("tendermint", res)
		res.Fig6.Render(os.Stdout)
		fmt.Println()
		res.Fig7.Render(os.Stdout)
		fmt.Println("\n# Table I: execution summary")
		fmt.Printf("%-10s %-12s %-14s %-12s\n", "rate", "requested", "submitted", "committed")
		for _, r := range res.Table1 {
			fmt.Printf("%-10d %-12d %-8d(%.1f%%) %-8d(%.1f%%)\n", r.Rate, r.Requested,
				r.Submitted, pct(r.Submitted, r.Requested),
				r.Committed, pct(r.Committed, r.Submitted))
		}
		fmt.Println()
	}
	for _, cfg := range []struct {
		name     string
		relayers int
		lan      bool
	}{
		{"fig8", 1, false}, {"fig8-lan", 1, true},
		{"fig9", 2, false}, {"fig9-lan", 2, true},
	} {
		if !want(cfg.name) && !want("fig10") && !want("fig11") {
			continue
		}
		if (cfg.name == "fig8" || cfg.name == "fig8-lan") && !want("fig8") && !want("fig10") {
			continue
		}
		if (cfg.name == "fig9" || cfg.name == "fig9-lan") && !want("fig9") && !want("fig11") {
			continue
		}
		pts := experiments.RelayerSweep(opt, cfg.relayers, cfg.lan)
		record(cfg.name, pts)
		fmt.Printf("# %s: %d relayer(s), lan=%v (Figs. 8-11)\n", cfg.name, cfg.relayers, cfg.lan)
		fmt.Printf("%-8s %-10s %-11s %-9s %-10s %-13s %-10s\n",
			"rate", "TFPS", "completed", "partial", "initiated", "notcommitted", "redundant")
		for _, p := range pts {
			fmt.Printf("%-8d %-10.1f %-11.0f %-9.0f %-10.0f %-13.0f %-10.0f\n",
				p.Rate, p.Throughput.Mean, p.Completed, p.Partial, p.Initiated,
				p.NotCommitted, p.RedundantErrors)
		}
		fmt.Println()
	}
	if want("fig12") {
		res := experiments.Fig12(*transfers, *seed)
		record("fig12", res)
		fmt.Printf("# Fig12: %d transfers in one block — 13-step breakdown\n", res.Transfers)
		fmt.Printf("%-28s %-12s %-12s\n", "step", "first", "last")
		for _, s := range res.Steps {
			fmt.Printf("%-28s %-12s %-12s\n", s.Step, fmtSec(s.First), fmtSec(s.Last))
		}
		fmt.Printf("completed: %d/%d  total: %s\n", res.Completed, res.Transfers, fmtSec(res.Total))
		fmt.Printf("phases: transfer=%s receive=%s ack=%s\n",
			fmtSec(res.TransferPhase), fmtSec(res.ReceivePhase), fmtSec(res.AckPhase))
		pulls := res.TransferDataPull + res.RecvDataPull
		fmt.Printf("data pulls: %s (%.0f%% of total; paper: 69%%)\n\n",
			fmtSec(pulls), 100*pulls.Seconds()/res.Total.Seconds())
	}
	if want("fig13") {
		rows := experiments.Fig13(*transfers, nil, *seed)
		record("fig13", rows)
		fmt.Printf("# Fig13: %d transfers, submission spread over N blocks\n", *transfers)
		fmt.Printf("%-10s %-14s %-10s\n", "blocks", "completion", "completed")
		for _, r := range rows {
			fmt.Printf("%-10d %-14s %-10d\n", r.Blocks, fmtSec(r.Completion), r.Completed)
		}
		fmt.Println()
	}
	if want("gas") {
		rows := experiments.GasTable(*seed)
		record("gas", rows)
		fmt.Println("# Gas per 100-message transaction class (§IV-A)")
		fmt.Printf("%-22s %-12s %-12s\n", "class", "measured", "paper")
		for _, r := range rows {
			fmt.Printf("%-22s %-12d %-12d\n", r.MsgType, r.Measured, r.Paper)
		}
		fmt.Println()
	}
	if want("topo") {
		res, err := experiments.TopologySweepMode(opt, *topology, *rate, *forwarding)
		if err != nil {
			return err
		}
		record("topo", res)
		res.Render(os.Stdout)
		fmt.Println()
	}
	if want("forward") {
		// Latency-vs-hops: both route modes side by side from one run per
		// hop count. The default hub graph reproduces the paper-style hub
		// scenario (spoke -> hub -> spoke).
		res, err := experiments.ForwardingComparison(opt, *topology, *rate)
		if err != nil {
			return err
		}
		record("forward", res)
		res.Render(os.Stdout)
		fmt.Println()
	}
	if want("failover") {
		// Relayer failover: supervised standbys under primary-host
		// partitions of increasing duration (packet-latency and
		// cleared-backlog curves across fault windows).
		res, err := experiments.Failover(opt, *topology, *rate)
		if err != nil {
			return err
		}
		record("failover", res)
		res.Render(os.Stdout)
		fmt.Println()
	}
	if want("votescale") {
		// Validator-scaling: the shared vote-verification engine makes
		// set size an affordable axis; blocks/s stays flat (virtual
		// timing) while wall cost grows ~linearly instead of quadratically.
		res, err := experiments.VoteScale(opt, *topology, *rate, valSizes)
		if err != nil {
			return err
		}
		record("votescale", res)
		res.Render(os.Stdout)
		fmt.Println()
	}
	if want("meshscale") {
		// Serial-vs-parallel scaling: each cell runs the same full-mesh
		// scenario on both runners, checks result-fingerprint equality
		// and reports the wall-clock speedup curve.
		chains := experiments.DefaultMeshScaleChains
		if strings.HasPrefix(*topology, "mesh:") {
			n, err := strconv.Atoi(strings.TrimPrefix(*topology, "mesh:"))
			if err != nil || n < 2 {
				return fmt.Errorf("ibcbench: -experiment meshscale needs -topology mesh:n with n >= 2 (got %q)", *topology)
			}
			chains = []int{n}
		}
		res, err := experiments.MeshScale(opt, chains, *parallel)
		if err != nil {
			return err
		}
		record("meshscale", res)
		res.Render(os.Stdout)
		fmt.Println()
	}
	if want("ws") {
		res := experiments.WebSocketLimit(*seed, 1000, 60)
		record("ws", res)
		fmt.Println("# WebSocket frame-limit experiment (§V)")
		fmt.Printf("transfers=%d framesLost=%d\n", res.Transfers, res.FramesLost)
		fmt.Printf("completed: %d (%.1f%%)  timed out: %d (%.1f%%)  stuck: %d (%.1f%%)\n",
			res.Completed, pct(res.Completed, res.Transfers),
			int(res.TimedOut), pct(int(res.TimedOut), res.Transfers),
			res.Stuck, pct(res.Stuck, res.Transfers))
		fmt.Println("paper: 2.5% completed / 15.7% timed out / 81.8% stuck")
	}
	if *out != "" || *storeDir != "" || lc != nil {
		report["config"] = cfgHeader()
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return fmt.Errorf("marshal results: %w", err)
		}
		data = append(data, '\n')
		if *out != "" {
			if err := os.WriteFile(*out, data, 0o644); err != nil {
				return fmt.Errorf("write %s: %w", *out, err)
			}
			fmt.Fprintf(os.Stderr, "results written to %s\n", *out)
		}
		if *storeDir != "" {
			if err := archiveRun(*storeDir, "experiment", data, nil, false, os.Stderr); err != nil {
				return err
			}
		}
		if lc != nil {
			meta := experiments.CaptureRunMeta()
			id, created, err := lc.Finish("experiment", meta.Commit, data)
			if err != nil {
				return fmt.Errorf("live finish: %w", err)
			}
			note := ""
			if !created {
				note = " (already archived)"
			}
			fmt.Fprintf(os.Stderr, "live: archived run %s%s\n", id, note)
		}
	}
	return nil
}

// parseValidatorList parses the -validators comma list ("" = nil).
func parseValidatorList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("ibcbench: -validators %q: each entry must be a positive integer", s)
		}
		out = append(out, v)
	}
	return out, nil
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func fmtSec(d time.Duration) string {
	return fmt.Sprintf("%.1fs", d.Seconds())
}
