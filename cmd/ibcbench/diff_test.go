package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffReportsDeltas(t *testing.T) {
	oldPath := writeTemp(t, "old.json", `{
		"topo": {"Throughput": {"Mean": 100.0, "N": 3}, "Spec": "hub:4"},
		"rows": [{"Rate": 20, "TFPS": 80.0}],
		"gone": 1
	}`)
	newPath := writeTemp(t, "new.json", `{
		"topo": {"Throughput": {"Mean": 110.0, "N": 3}, "Spec": "hub:4"},
		"rows": [{"Rate": 20, "TFPS": 72.0}],
		"fresh": true
	}`)
	var sb strings.Builder
	if err := runDiff(oldPath, newPath, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"topo.Throughput.Mean", "+10", "+10.0%",
		"rows[0].TFPS", "-8", "-10.0%",
		"added:   fresh", "removed: gone",
		"3 unchanged",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff output missing %q:\n%s", want, out)
		}
	}
	// Unchanged metrics (Spec, N, Rate) are not listed as changed rows.
	if strings.Contains(out, "topo.Spec ") {
		t.Fatalf("unchanged metric listed:\n%s", out)
	}
}

func TestDiffWarnsOnConfigMismatch(t *testing.T) {
	oldPath := writeTemp(t, "old.json", `{
		"config": {"topology": "hub:4", "regions": "", "seed": 42},
		"topo": {"Throughput": 100.0}
	}`)
	newPath := writeTemp(t, "new.json", `{
		"config": {"topology": "hub:6", "regions": "3wan", "seed": 42},
		"topo": {"Throughput": 80.0}
	}`)
	var sb strings.Builder
	if err := runDiff(oldPath, newPath, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"WARNING", "different configurations",
		"config.topology: hub:4 -> hub:6",
		"config.regions:  -> 3wan",
		"topo.Throughput", // metrics still diffed after the warning
		"1 changed",       // ...but config fields don't count as metrics
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "config.seed:") {
		t.Fatalf("matching config field warned about:\n%s", out)
	}
}

// TestDiffConfigOnlyDifference: documents differing only in their config
// headers warn but report no metric differences (regression gates key on
// the changed-metric count).
func TestDiffConfigOnlyDifference(t *testing.T) {
	oldPath := writeTemp(t, "old.json", `{
		"config": {"topology": "hub:4"},
		"topo": {"Throughput": 100.0}
	}`)
	newPath := writeTemp(t, "new.json", `{
		"config": {"topology": "hub:6"},
		"topo": {"Throughput": 100.0}
	}`)
	var sb strings.Builder
	if err := runDiff(oldPath, newPath, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "WARNING") || !strings.Contains(out, "no differences") {
		t.Fatalf("config-only diff should warn yet report no metric differences:\n%s", out)
	}
}

func TestDiffNoWarningOnMatchingConfigs(t *testing.T) {
	mk := func(name string, tput float64) string {
		return writeTemp(t, name, `{
			"config": {"topology": "hub:4", "seed": 42},
			"topo": {"Throughput": `+fmtFloat(tput)+`}
		}`)
	}
	var sb strings.Builder
	if err := runDiff(mk("old.json", 100), mk("new.json", 90), &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "WARNING") {
		t.Fatalf("matching configs warned:\n%s", sb.String())
	}
	// Pre-header documents (no "config" key) are compared silently.
	a := writeTemp(t, "a.json", `{"topo": 1}`)
	b := writeTemp(t, "b.json", `{"topo": 2}`)
	sb.Reset()
	if err := runDiff(a, b, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "WARNING") {
		t.Fatalf("header-less files warned:\n%s", sb.String())
	}
}

func fmtFloat(f float64) string { return strings.TrimRight(strings.TrimRight(fmtNum(f), "0"), ".") }

func TestDiffIdenticalFiles(t *testing.T) {
	p := writeTemp(t, "same.json", `{"a": 1, "b": {"c": [1, 2]}}`)
	var sb strings.Builder
	if err := runDiff(p, p, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no differences") {
		t.Fatalf("identical files reported differences:\n%s", sb.String())
	}
}

func TestDiffMissingFile(t *testing.T) {
	p := writeTemp(t, "a.json", `{}`)
	var sb strings.Builder
	if err := runDiff(p, filepath.Join(t.TempDir(), "missing.json"), &sb); err == nil {
		t.Fatal("missing file accepted")
	}
}
