package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffReportsDeltas(t *testing.T) {
	oldPath := writeTemp(t, "old.json", `{
		"topo": {"Throughput": {"Mean": 100.0, "N": 3}, "Spec": "hub:4"},
		"rows": [{"Rate": 20, "TFPS": 80.0}],
		"gone": 1
	}`)
	newPath := writeTemp(t, "new.json", `{
		"topo": {"Throughput": {"Mean": 110.0, "N": 3}, "Spec": "hub:4"},
		"rows": [{"Rate": 20, "TFPS": 72.0}],
		"fresh": true
	}`)
	var sb strings.Builder
	if err := runDiff(oldPath, newPath, -1, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"topo.Throughput.Mean", "+10", "+10.0%",
		"rows[0].TFPS", "-8", "-10.0%",
		"added:   fresh", "removed: gone",
		"3 unchanged",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff output missing %q:\n%s", want, out)
		}
	}
	// Unchanged metrics (Spec, N, Rate) are not listed as changed rows.
	if strings.Contains(out, "topo.Spec ") {
		t.Fatalf("unchanged metric listed:\n%s", out)
	}
}

func TestDiffWarnsOnConfigMismatch(t *testing.T) {
	oldPath := writeTemp(t, "old.json", `{
		"config": {"topology": "hub:4", "regions": "", "seed": 42},
		"topo": {"Throughput": 100.0}
	}`)
	newPath := writeTemp(t, "new.json", `{
		"config": {"topology": "hub:6", "regions": "3wan", "seed": 42},
		"topo": {"Throughput": 80.0}
	}`)
	var sb strings.Builder
	if err := runDiff(oldPath, newPath, -1, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"WARNING", "different configurations",
		"config.topology: hub:4 -> hub:6",
		"config.regions:  -> 3wan",
		"topo.Throughput", // metrics still diffed after the warning
		"1 changed",       // ...but config fields don't count as metrics
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "config.seed:") {
		t.Fatalf("matching config field warned about:\n%s", out)
	}
}

// TestDiffConfigOnlyDifference: documents differing only in their config
// headers warn but report no metric differences (regression gates key on
// the changed-metric count).
func TestDiffConfigOnlyDifference(t *testing.T) {
	oldPath := writeTemp(t, "old.json", `{
		"config": {"topology": "hub:4"},
		"topo": {"Throughput": 100.0}
	}`)
	newPath := writeTemp(t, "new.json", `{
		"config": {"topology": "hub:6"},
		"topo": {"Throughput": 100.0}
	}`)
	var sb strings.Builder
	if err := runDiff(oldPath, newPath, -1, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "WARNING") || !strings.Contains(out, "no differences") {
		t.Fatalf("config-only diff should warn yet report no metric differences:\n%s", out)
	}
}

func TestDiffNoWarningOnMatchingConfigs(t *testing.T) {
	mk := func(name string, tput float64) string {
		return writeTemp(t, name, `{
			"config": {"topology": "hub:4", "seed": 42},
			"topo": {"Throughput": `+fmtFloat(tput)+`}
		}`)
	}
	var sb strings.Builder
	if err := runDiff(mk("old.json", 100), mk("new.json", 90), -1, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "WARNING") {
		t.Fatalf("matching configs warned:\n%s", sb.String())
	}
	// Pre-header documents (no "config" key) are compared silently.
	a := writeTemp(t, "a.json", `{"topo": 1}`)
	b := writeTemp(t, "b.json", `{"topo": 2}`)
	sb.Reset()
	if err := runDiff(a, b, -1, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "WARNING") {
		t.Fatalf("header-less files warned:\n%s", sb.String())
	}
}

func fmtFloat(f float64) string { return strings.TrimRight(strings.TrimRight(fmtNum(f), "0"), ".") }

func TestDiffIdenticalFiles(t *testing.T) {
	p := writeTemp(t, "same.json", `{"a": 1, "b": {"c": [1, 2]}}`)
	var sb strings.Builder
	if err := runDiff(p, p, -1, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no differences") {
		t.Fatalf("identical files reported differences:\n%s", sb.String())
	}
}

func TestDiffMissingFile(t *testing.T) {
	p := writeTemp(t, "a.json", `{}`)
	var sb strings.Builder
	if err := runDiff(p, filepath.Join(t.TempDir(), "missing.json"), -1, &sb); err == nil {
		t.Fatal("missing file accepted")
	}
}

// --- fail-on-change CI gate --------------------------------------------------

func TestDiffFailOnChangeTrips(t *testing.T) {
	oldPath := writeTemp(t, "old.json", `{"bench": {"BenchmarkVoteFanout/vals-13": {"ns/op": 100000.0}}}`)
	newPath := writeTemp(t, "new.json", `{"bench": {"BenchmarkVoteFanout/vals-13": {"ns/op": 150000.0}}}`)
	var sb strings.Builder
	err := runDiff(oldPath, newPath, 20, &sb)
	if err == nil {
		t.Fatalf("+50%% move within a 20%% tolerance did not trip the gate:\n%s", sb.String())
	}
	if !strings.Contains(err.Error(), "beyond") {
		t.Fatalf("gate error %q does not name the tolerance", err)
	}
	if !strings.Contains(sb.String(), "exceeds") {
		t.Fatalf("gate output does not list the exceeding metric:\n%s", sb.String())
	}
}

func TestDiffFailOnChangeWithinTolerance(t *testing.T) {
	oldPath := writeTemp(t, "old.json", `{"m": {"a": 100.0, "b": 10.0}}`)
	newPath := writeTemp(t, "new.json", `{"m": {"a": 110.0, "b": 10.5}}`)
	var sb strings.Builder
	// +10% and +5% moves under a 25% tolerance: exit zero.
	if err := runDiff(oldPath, newPath, 25, &sb); err != nil {
		t.Fatalf("moves within tolerance tripped the gate: %v\n%s", err, sb.String())
	}
}

func TestDiffFailOnChangeZeroBaseline(t *testing.T) {
	// A metric moving off zero has no percent change; an armed gate trips.
	oldPath := writeTemp(t, "old.json", `{"errors": 0}`)
	newPath := writeTemp(t, "new.json", `{"errors": 3}`)
	var sb strings.Builder
	if err := runDiff(oldPath, newPath, 50, &sb); err == nil {
		t.Fatalf("0 -> 3 move did not trip the gate:\n%s", sb.String())
	}
	// Unarmed (negative tolerance): report only.
	sb.Reset()
	if err := runDiff(oldPath, newPath, -1, &sb); err != nil {
		t.Fatalf("unarmed diff returned error: %v", err)
	}
}

func TestDiffFailOnChangeIgnoresAddedRemoved(t *testing.T) {
	// New or retired benchmarks must not fail the gate.
	oldPath := writeTemp(t, "old.json", `{"bench": {"BenchmarkOld": {"ns/op": 5.0}}}`)
	newPath := writeTemp(t, "new.json", `{"bench": {"BenchmarkNew": {"ns/op": 7.0}}}`)
	var sb strings.Builder
	if err := runDiff(oldPath, newPath, 10, &sb); err != nil {
		t.Fatalf("added/removed metrics tripped the gate: %v\n%s", err, sb.String())
	}
}

func TestDiffFailOnChangeSkippedOnConfigMismatch(t *testing.T) {
	// Config-mismatched files are excluded from the gate: the deltas
	// measure the config change, not a regression.
	oldPath := writeTemp(t, "old.json", `{
		"config": {"topology": "hub:4"},
		"topo": {"Throughput": 100.0}
	}`)
	newPath := writeTemp(t, "new.json", `{
		"config": {"topology": "hub:6"},
		"topo": {"Throughput": 10.0}
	}`)
	var sb strings.Builder
	if err := runDiff(oldPath, newPath, 5, &sb); err != nil {
		t.Fatalf("gate fired across mismatched configs: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "gate skipped") {
		t.Fatalf("skipped gate not reported:\n%s", sb.String())
	}
}

// --- bench2json --------------------------------------------------------------

func TestBench2JSONParsesAndAverages(t *testing.T) {
	raw := `goos: linux
goarch: amd64
pkg: ibcbench
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkVoteFanout/vals-13-8         	       3	  30000000 ns/op	        12.00 blocks-per-vmin
BenchmarkVoteFanout/vals-13-8         	       3	  32000000 ns/op	        12.00 blocks-per-vmin
BenchmarkVoteFanout/vals-13-8         	       3	  34000000 ns/op	        12.00 blocks-per-vmin
BenchmarkNetemSend-8                  	       3	       100 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	ibcbench	1.234s
`
	doc, err := parseBenchOutput(strings.NewReader(raw), 8)
	if err != nil {
		t.Fatal(err)
	}
	fan, ok := doc["BenchmarkVoteFanout/vals-13"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", doc)
	}
	// On a single-proc run go test appends no suffix; a name ending in
	// digits must survive unstripped.
	doc1, err := parseBenchOutput(strings.NewReader("BenchmarkVoteFanout/vals-13 \t 3 \t 100 ns/op\n"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := doc1["BenchmarkVoteFanout/vals-13"]; !ok {
		t.Fatalf("suffix-less name mangled: %v", doc1)
	}
	if got := fan["ns/op"]; got != 32000000 {
		t.Fatalf("ns/op mean = %v, want 32000000 (average of 3 repeats)", got)
	}
	if got := fan["blocks-per-vmin"]; got != 12 {
		t.Fatalf("custom metric = %v, want 12", got)
	}
	if got := doc["BenchmarkNetemSend"]["allocs/op"]; got != 0 {
		t.Fatalf("allocs/op = %v, want 0", got)
	}
}

func TestBench2JSONRoundTripsThroughDiff(t *testing.T) {
	// The converter's output must be diffable: same shape both sides,
	// gate trips on a regression beyond tolerance.
	mk := func(name string, ns float64) string {
		raw := writeTemp(t, name+".txt",
			"BenchmarkVoteFanout/vals-13-8 \t 3 \t "+fmtFloat(ns)+" ns/op\n")
		out := filepath.Join(t.TempDir(), name+".json")
		if err := runBench2JSON(raw, out, os.Stdout); err != nil {
			t.Fatal(err)
		}
		return out
	}
	oldJSON, newJSON := mk("old", 100000), mk("new", 200000)
	var sb strings.Builder
	if err := runDiff(oldJSON, newJSON, 25, &sb); err == nil {
		t.Fatalf("2x bench regression passed the 25%% gate:\n%s", sb.String())
	}
}

func TestBench2JSONRejectsEmptyInput(t *testing.T) {
	p := writeTemp(t, "empty.txt", "no benchmarks here\n")
	if err := runBench2JSON(p, "", io.Discard); err == nil {
		t.Fatal("empty bench output accepted")
	}
}
