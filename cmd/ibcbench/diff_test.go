package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffReportsDeltas(t *testing.T) {
	oldPath := writeTemp(t, "old.json", `{
		"topo": {"Throughput": {"Mean": 100.0, "N": 3}, "Spec": "hub:4"},
		"rows": [{"Rate": 20, "TFPS": 80.0}],
		"gone": 1
	}`)
	newPath := writeTemp(t, "new.json", `{
		"topo": {"Throughput": {"Mean": 110.0, "N": 3}, "Spec": "hub:4"},
		"rows": [{"Rate": 20, "TFPS": 72.0}],
		"fresh": true
	}`)
	var sb strings.Builder
	if err := runDiff(oldPath, newPath, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"topo.Throughput.Mean", "+10", "+10.0%",
		"rows[0].TFPS", "-8", "-10.0%",
		"added:   fresh", "removed: gone",
		"3 unchanged",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff output missing %q:\n%s", want, out)
		}
	}
	// Unchanged metrics (Spec, N, Rate) are not listed as changed rows.
	if strings.Contains(out, "topo.Spec ") {
		t.Fatalf("unchanged metric listed:\n%s", out)
	}
}

func TestDiffIdenticalFiles(t *testing.T) {
	p := writeTemp(t, "same.json", `{"a": 1, "b": {"c": [1, 2]}}`)
	var sb strings.Builder
	if err := runDiff(p, p, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no differences") {
		t.Fatalf("identical files reported differences:\n%s", sb.String())
	}
}

func TestDiffMissingFile(t *testing.T) {
	p := writeTemp(t, "a.json", `{}`)
	var sb strings.Builder
	if err := runDiff(p, filepath.Join(t.TempDir(), "missing.json"), &sb); err == nil {
		t.Fatal("missing file accepted")
	}
}
