// The experiment-service entry points: `ibcbench serve` runs the HTTP
// dashboard over a persistent store, and `-store DIR` on a normal run
// archives the result document in place (no server needed — serve can
// be pointed at the same directory later).
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"time"

	"ibcbench/internal/experiments"
	"ibcbench/internal/serve"
	"ibcbench/internal/store"
)

// runServe starts the experiment service over a store directory:
//
//	ibcbench serve [-store DIR] [-addr HOST:PORT] [-pprof]
func runServe(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ibcbench serve", flag.ContinueOnError)
	dir := fs.String("store", "ibcbench-store", "experiment store directory (created if missing)")
	addr := fs.String("addr", "127.0.0.1:8321", "listen address")
	pprofOn := fs.Bool("pprof", false, "expose the net/http/pprof profiling handlers under /debug/pprof/")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := store.Open(*dir)
	if err != nil {
		return err
	}
	defer st.Close()
	srv := serve.New(st)
	note := ""
	if *pprofOn {
		srv.EnablePprof()
		note = " (pprof on)"
	}
	fmt.Fprintf(w, "ibcbench serve: %d archived run(s) in %s — http://%s/%s\n", len(st.Runs()), st.Dir(), *addr, note)
	return http.ListenAndServe(*addr, srv)
}

// archiveRun ingests one result document (and optionally its trace)
// into a local store. The commit comes from CaptureRunMeta and the
// timestamp from the wall clock, so every CLI invocation lands as a
// distinct run while re-posting an already-archived document through
// /api/ingest stays idempotent (the poster supplies the stored
// timestamp there).
func archiveRun(dir, kind string, payload, trace []byte, traceValid bool, w io.Writer) error {
	st, err := store.Open(dir)
	if err != nil {
		return err
	}
	defer st.Close()
	meta := experiments.CaptureRunMeta()
	// Nanosecond stamps keep back-to-back same-seed invocations distinct
	// — virtual-clock results are byte-identical, so a coarser stamp
	// would dedupe them into one run.
	m, created, err := st.Ingest(kind, meta.Commit, time.Now().UTC().Format(time.RFC3339Nano), payload)
	if err != nil {
		return fmt.Errorf("archive in %s: %w", dir, err)
	}
	if !created {
		fmt.Fprintf(w, "store: run %s already archived in %s\n", m.ID, dir)
		return nil
	}
	if trace != nil {
		if m, err = st.AttachTrace(m.ID, trace, traceValid); err != nil {
			return fmt.Errorf("attach trace to %s: %w", m.ID, err)
		}
	}
	badge := ""
	if m.HasTrace() {
		badge = " + trace"
		if !traceValid {
			badge = " + trace (invalid)"
		}
	}
	fmt.Fprintf(w, "store: archived run %s (seq %d)%s in %s\n", m.ID, m.Seq, badge, dir)
	return nil
}
