package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ibcbench/internal/obs"
	"ibcbench/internal/serve"
	"ibcbench/internal/store"
)

// TestLiveClientAgainstService drives the CLI telemetry client against
// a real in-process experiment service: Hook publishes snapshots that
// appear under /api/live, and Finish archives the result document and
// clears the session.
func TestLiveClientAgainstService(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ts := httptest.NewServer(serve.New(st))
	defer ts.Close()

	lc := newLiveClient(strings.TrimPrefix(ts.URL, "http://"))
	lc.Hook(obs.LiveStatus{Name: "hub-3", Seed: 5, Now: 2 * time.Second, Blocks: 4, Tracked: 10, Completed: 6, Backlog: 4})
	lc.Hook(obs.LiveStatus{Name: "hub-3", Seed: 5, Now: 4 * time.Second, Blocks: 8, Tracked: 10, Completed: 10})

	resp, err := http.Get(ts.URL + "/api/live")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Live []struct {
			Session string         `json:"session"`
			Updates int            `json:"updates"`
			Status  obs.LiveStatus `json:"status"`
		} `json:"live"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Live) != 1 || list.Live[0].Updates != 2 || list.Live[0].Status.Blocks != 8 {
		t.Fatalf("live entries %+v", list.Live)
	}
	if list.Live[0].Session != lc.session {
		t.Fatalf("session %q, want %q", list.Live[0].Session, lc.session)
	}

	id, created, err := lc.Finish("experiment", "abc1234", []byte(`{"config": {"topology": "hub:3"}, "result": {"ok": true}}`))
	if err != nil {
		t.Fatal(err)
	}
	if id == "" || !created {
		t.Fatalf("finish: id=%q created=%v", id, created)
	}
	if got := len(st.Runs()); got != 1 {
		t.Fatalf("archived runs = %d, want 1", got)
	}
	if meta := st.Runs()[0]; meta.ID != id || meta.Kind != "experiment" || meta.Commit != "abc1234" {
		t.Fatalf("archived meta %+v", meta)
	}
}

// TestLiveClientToleratesDeadService: a dead -live target must never
// fail the run — Hook warns once and Finish with no payload is the
// only call that surfaces the error to its caller.
func TestLiveClientToleratesDeadService(t *testing.T) {
	lc := newLiveClient("127.0.0.1:1") // nothing listens on port 1
	lc.Hook(obs.LiveStatus{Name: "x"}) // must not panic or block the run
	lc.Hook(obs.LiveStatus{Name: "x"})
	if !lc.warned {
		t.Fatal("dead service did not trip the one-shot warning")
	}
	if _, _, err := lc.Finish("", "", nil); err == nil {
		t.Fatal("finish against a dead service reported success")
	}
}
