package main

import (
	"bytes"
	"path/filepath"
	"testing"

	"ibcbench/internal/store"
)

// TestStoreFlagArchivesRuns drives the CLI auto-archival path end to
// end: two topo runs and one traced run land in the same store, the
// traced run carries a validated trace plus provenance, and the trend
// across the archived documents is readable.
func TestStoreFlagArchivesRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full CLI runs")
	}
	dir := filepath.Join(t.TempDir(), "runs")
	base := []string{"-experiment", "topo", "-topology", "hub:3", "-rate", "3", "-seeds", "1", "-windows", "2", "-store", dir}
	if err := run(base); err != nil {
		t.Fatalf("first archived run: %v", err)
	}
	if err := run(append(base, "-seed", "43")); err != nil {
		t.Fatalf("second archived run: %v", err)
	}
	trace := filepath.Join(t.TempDir(), "trace.json")
	if err := run([]string{"-trace", trace, "-topology", "hub:3", "-rate", "3", "-windows", "2", "-store", dir}); err != nil {
		t.Fatalf("traced archived run: %v", err)
	}

	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	runs := st.Runs()
	if len(runs) != 3 {
		t.Fatalf("archived runs = %d, want 3", len(runs))
	}
	var traced *store.Meta
	for i := range runs {
		if runs[i].Kind == "trace" {
			traced = &runs[i]
		}
		if runs[i].Config["topology"] != "hub:3" {
			t.Errorf("run %s config header not lifted: %v", runs[i].ID, runs[i].Config)
		}
	}
	if traced == nil {
		t.Fatal("no trace-kind run archived")
	}
	if !traced.HasTrace() || !*traced.TraceValid {
		t.Fatalf("traced run missing valid trace badge: %+v", traced)
	}
	if _, err := st.Trace(traced.ID); err != nil {
		t.Fatalf("stored trace unreadable: %v", err)
	}
	_, payload, err := st.Get(traced.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(payload, []byte(`"Provenance"`)) || !bytes.Contains(payload, []byte(`"GoVersion"`)) {
		t.Error("archived traced result lacks provenance stamp")
	}

	points, err := st.Trend("topo.Sample.BlocksPerSec", "experiment")
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("experiment trend points = %d, want 2", len(points))
	}
	for _, p := range points {
		if p.Value <= 0 {
			t.Errorf("trend value %v not positive", p.Value)
		}
	}
}
