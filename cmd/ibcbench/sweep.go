// The sweep driver: the paper's experiment suite behind one flag set.
// This is also the flat-flag compatibility surface — `ibcbench
// -experiment topo ...` lands here unchanged, so the flag set, the
// config header and the stdout rendering must stay byte-compatible
// with the pre-subcommand CLI (the VIRT regression gate diffs -out
// documents across revisions).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"ibcbench/internal/experiments"
	"ibcbench/internal/netem"
	"ibcbench/internal/topo"
)

// runSweep executes the selected experiments:
//
//	ibcbench sweep -experiment topo -topology hub:4 -rate 20 [...]
//
// It also hosts the legacy dispatch flags (-trace, -diff, -bench2json,
// -validate-trace, -trace-analyze) so the deprecated flat invocation
// keeps working through the same code path as before.
func runSweep(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ibcbench sweep", flag.ContinueOnError)
	var (
		exp        = fs.String("experiment", "all", strings.Join(experiments.Selectors(), "|")+"|all")
		seeds      = fs.Int("seeds", 3, "executions per configuration (paper: 20)")
		windows    = fs.Int("windows", 0, "submission block windows (0 = paper default)")
		transfers  = fs.Int("transfers", 5000, "transfers for fig12/fig13")
		seed       = fs.Int64("seed", 42, "base RNG seed")
		topology   = fs.String("topology", "hub:4", "topo/forward/failover experiment graph: two|line:n|hub:n|mesh:n")
		rate       = fs.Int("rate", 20, "per-edge input rate (rps) for topo/failover; transfers per route for forward")
		regions    = fs.String("regions", "", "geo region preset for topo/failover deployments: 3wan|hubspoke:n|uniform:k (\"\" = the paper's uniform WAN)")
		validators = fs.String("validators", "", "validator-set sizes: votescale sweeps the comma list (default 4,8,12,16,24,32); other topology experiments use the first value (\"\" = the paper's 5)")
		forwarding = fs.Bool("forwarding", false, "run topo multi-hop routes through the packet-forward middleware instead of sequential legs")
		workers    = fs.Int("workers", 0, "sweep worker pool size (0 = all cores, 1 = serial)")
		parallel   = fs.Int("parallel", 0, "intra-run partitioned workers: split each simulation's chains over N OS workers with byte-identical results (0/1 = serial scheduler); also the worker count of -experiment meshscale")
		out        = fs.String("out", "", "write every experiment's result as JSON to this file (cross-PR regression tracking)")
		storeDir   = fs.String("store", "", "archive the result document (the -out payload) into this experiment-store directory; browse it with `ibcbench serve -store DIR`")
		diffOld    = fs.String("diff", "", "compare this -out result file against the positional argument and exit (deprecated alias for `ibcbench diff`)")
		failPct    = fs.Float64("fail-on-change", -1, "with -diff: exit nonzero when any metric moves beyond this tolerance in percent (negative = report only; skipped when the files' config headers mismatch)")
		benchTxt   = fs.String("bench2json", "", "convert `go test -bench` output in this file to a JSON metrics document (written to -out, default stdout) and exit (deprecated alias for `ibcbench bench2json`)")
		tracePath  = fs.String("trace", "", "run one instrumented -topology scenario and write a Chrome trace-event file (Perfetto-loadable) here, then exit (deprecated alias for `ibcbench trace -out`)")
		traceSum   = fs.Bool("trace-summary", false, "with or without -trace: run one instrumented scenario and print the top spans by total/self time per subsystem")
		traceCheck = fs.String("validate-trace", "", "structurally validate a -trace output file (JSON shape, span timing, async begin/end balance) and exit (deprecated alias for `ibcbench trace -validate`)")
		traceAna   = fs.String("trace-analyze", "", "analyze an exported -trace file: flame span tree plus per-packet critical-path latency tables, then exit (deprecated alias for `ibcbench trace -analyze`)")
		topN       = fs.Int("top", 20, "row cap for -trace-summary and -trace-analyze tables (0 = unlimited)")
		liveAddr   = fs.String("live", "", "stream live run telemetry to an `ibcbench serve` address (host:port) and archive the result there when the run completes")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the experiment run to this file (go tool pprof)")
		memProfile = fs.String("memprofile", "", "write a heap profile taken after the experiment run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *benchTxt != "" {
		return runBench2JSON(*benchTxt, *out, w)
	}
	if *traceCheck != "" {
		return runValidateTrace(*traceCheck, w)
	}
	if *traceAna != "" {
		return runTraceAnalyze(*traceAna, *topN, w)
	}
	if *diffOld != "" {
		if fs.NArg() < 1 {
			return fmt.Errorf("usage: ibcbench -diff old.json new.json [-fail-on-change pct]")
		}
		newPath := fs.Arg(0)
		// Flag parsing stops at the positional new.json; pick up trailing
		// flags (-fail-on-change after the file names) with a second pass.
		if fs.NArg() > 1 {
			if err := fs.Parse(fs.Args()[1:]); err != nil {
				return err
			}
			if fs.NArg() != 0 {
				return fmt.Errorf("usage: ibcbench -diff old.json new.json [-fail-on-change pct]")
			}
		}
		return runDiff(*diffOld, newPath, *failPct, w)
	}
	valSizes, err := parseValidatorList(*validators)
	if err != nil {
		return err
	}
	opt := experiments.Options{Seeds: *seeds, Windows: *windows, Workers: *workers, Regions: *regions, Parallel: *parallel}
	if len(valSizes) > 0 {
		opt.Validators = valSizes[0]
	}
	// Profiling brackets everything from here on — the simulation work.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "cpu profile written to %s\n", *cpuProfile)
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "heap profile written to %s\n", *memProfile)
		}()
	}
	var lc *liveClient
	if *liveAddr != "" {
		lc = newLiveClient(*liveAddr)
		opt.Live = &topo.LiveConfig{Hook: lc.Hook}
	}
	// The config header identifies what produced a result document;
	// `ibcbench diff` warns field by field when comparing results whose
	// headers disagree, and the store's trend/regression analysis treats
	// runs with differing headers as incompatible trajectories.
	cfgHeader := func() map[string]any {
		return map[string]any{
			"experiment": *exp, "seeds": *seeds, "windows": *windows,
			"transfers": *transfers, "seed": *seed, "topology": *topology,
			"rate": *rate, "regions": *regions, "forwarding": *forwarding,
			"validators": *validators, "parallel": *parallel,
			"netem": netem.DefaultWAN(),
		}
	}
	if *tracePath != "" || *traceSum {
		err := runTrace(opt, *topology, *rate, *forwarding, *seed, *tracePath, *traceSum, *topN,
			*storeDir, cfgHeader(), w)
		if lc != nil {
			// The traced run archives locally (-store); just clear the
			// session's live entries on the service.
			lc.Finish("", "", nil)
		}
		return err
	}
	selected, err := experiments.Select(*exp)
	if err != nil {
		return err
	}
	report := map[string]any{}
	record := func(key string, v any) {
		if *out != "" || *storeDir != "" || lc != nil {
			report[key] = v
		}
	}
	ctx := experiments.RunContext{
		Opt:        opt,
		Seed:       *seed,
		Transfers:  *transfers,
		Topology:   *topology,
		Rate:       *rate,
		Forwarding: *forwarding,
		Validators: valSizes,
		Parallel:   *parallel,
		Out:        w,
		Record:     record,
	}
	for _, e := range selected {
		if err := e.Run(ctx); err != nil {
			return err
		}
	}
	if *out != "" || *storeDir != "" || lc != nil {
		report["config"] = cfgHeader()
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return fmt.Errorf("marshal results: %w", err)
		}
		data = append(data, '\n')
		if *out != "" {
			if err := os.WriteFile(*out, data, 0o644); err != nil {
				return fmt.Errorf("write %s: %w", *out, err)
			}
			fmt.Fprintf(os.Stderr, "results written to %s\n", *out)
		}
		if *storeDir != "" {
			if err := archiveRun(*storeDir, "experiment", data, nil, false, os.Stderr); err != nil {
				return err
			}
		}
		if lc != nil {
			meta := experiments.CaptureRunMeta()
			id, created, err := lc.Finish("experiment", meta.Commit, data)
			if err != nil {
				return fmt.Errorf("live finish: %w", err)
			}
			note := ""
			if !created {
				note = " (already archived)"
			}
			fmt.Fprintf(os.Stderr, "live: archived run %s%s\n", id, note)
		}
	}
	return nil
}

// parseValidatorList parses the -validators comma list ("" = nil).
func parseValidatorList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("ibcbench: -validators %q: each entry must be a positive integer", s)
		}
		out = append(out, v)
	}
	return out, nil
}
