module ibcbench

go 1.22
