# Developer entry points. The rebaseline targets mirror the CI jobs
# byte for byte — refresh a committed baseline with them whenever an
# intentional change moves the gated metrics, and commit the result.

GO ?= go

.PHONY: test check rebaseline-virt rebaseline-bench serve

test:
	$(GO) build ./... && $(GO) test ./...

check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) vet ./...
	$(GO) test -short ./...

# Refresh VIRT_baseline.json — the armed 0.1% virtual-metric gate.
# Must match the "Virtual-metric regression gate" CI step exactly:
# virtual-clock results are deterministic per seed, so the fresh file
# should differ from the committed one only when simulation behavior
# intentionally moved.
rebaseline-virt:
	$(GO) run ./cmd/ibcbench -experiment topo -topology hub:3 -rate 5 -seeds 2 -windows 3 -out VIRT_baseline.json

# Refresh BENCH_baseline.json — the warn-only 30% wall-clock trajectory.
# Mirrors the CI bench job's "Hot-path benchmarks" step; run on a quiet
# machine.
rebaseline-bench:
	set -o pipefail; \
	$(GO) test -run '^$$' -bench 'BenchmarkVoteFanout|BenchmarkStateCommit|BenchmarkEventDecode|BenchmarkTracerOverhead|BenchmarkRelayerHubScan|BenchmarkMeshSerialVsParallel' -benchtime=3x -count=3 . | tee bench_raw.txt; \
	$(GO) test -run '^$$' -bench 'BenchmarkNetemSend' -benchtime=3x -count=3 ./internal/netem | tee -a bench_raw.txt; \
	$(GO) test -run '^$$' -bench 'BenchmarkQuorumTally' -benchtime=100x -count=3 ./internal/tendermint/consensus | tee -a bench_raw.txt
	$(GO) run ./cmd/ibcbench -bench2json bench_raw.txt -out BENCH_baseline.json
	rm -f bench_raw.txt

# Local experiment service over the default store directory.
serve:
	$(GO) run ./cmd/ibcbench serve -store ibcbench-store -addr 127.0.0.1:8321
