// Multirelayer demonstrates the paper's relayer-scalability finding
// (§IV-A, Fig. 9): two uncoordinated Hermes instances relaying one
// channel deliver LOWER throughput than a single relayer, because both
// race to deliver every packet and the loser burns fees on "packet
// messages are redundant" failures.
package main

import (
	"fmt"

	"ibcbench/internal/experiments"
)

func main() {
	const rate = 140 // the paper's peak-throughput input rate
	opt := experiments.Options{Seeds: 2, Rates: []int{rate}, Windows: 30}

	one := experiments.RelayerSweep(opt, 1, false)[0]
	two := experiments.RelayerSweep(opt, 2, false)[0]

	fmt.Printf("input rate: %d transfers/sec, 200ms RTT\n", rate)
	fmt.Printf("1 relayer : %.1f TFPS\n", one.Throughput.Mean)
	fmt.Printf("2 relayers: %.1f TFPS (redundant errors/run: %.0f)\n",
		two.Throughput.Mean, two.RedundantErrors)
	drop := 100 * (1 - two.Throughput.Mean/one.Throughput.Mean)
	fmt.Printf("throughput change from adding a relayer: -%.0f%% (paper: -33%%)\n", drop)
}
