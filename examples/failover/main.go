// Failover: a geo-distributed hub with standby relayers under fault
// injection. The hub and its spokes are placed in different regions of
// the three-region WAN matrix (heterogeneous per-path latencies instead
// of the paper's uniform 200 ms RTT), transfer traffic runs on every
// edge, and a chaos timeline blacks out the primary relayer's machine
// on edge 0 mid-run. The standby's supervisor detects the outage over
// missed health probes, takes over, and clears the backlog through the
// shared event index; the report shows the measured downtime and the
// injected-fault log.
package main

import (
	"fmt"
	"os"
	"time"

	"ibcbench/internal/chaos"
	"ibcbench/internal/geo"
	"ibcbench/internal/metrics"
	"ibcbench/internal/topo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	sc := topo.Scenario{
		Name:     "failover",
		Topology: topo.Hub(2),
		Deploy: topo.DeployConfig{
			Geo:     geo.ThreeRegionWAN(),
			Standby: true,
		},
		EdgeRates: map[int]int{0: 3, 1: 3},
		Windows:   4,
		Chaos: chaos.Timeline{Events: []chaos.Event{
			// Edge 0's primary machine drops off the network mid-run...
			{At: 12 * time.Second, Kind: chaos.PartitionLink, Edge: 0, Relayer: 0},
			// ...edge 1 takes a 100 ms latency spike for a while...
			{At: 30 * time.Second, Kind: chaos.LatencySpike, Edge: 1, ExtraLatency: 100 * time.Millisecond},
			{At: 90 * time.Second, Kind: chaos.LatencySpike, Edge: 1},
			// ...and the partition heals three minutes in.
			{At: 3 * time.Minute, Kind: chaos.HealLink, Edge: 0, Relayer: 0},
		}},
		Until: 6 * time.Minute,
	}
	res, err := sc.Run(42)
	if err != nil {
		return err
	}
	res.Render(os.Stdout)

	want := 2 * 3 * 5 * 4 // 2 edges x 3 rps x 5 s windows x 4 windows
	if got := res.Total[metrics.StatusCompleted]; got != want {
		return fmt.Errorf("completed %d of %d transfers despite the standby", got, want)
	}
	fo := res.Edges[0].Failover
	if fo == nil || fo.Takeovers == 0 {
		return fmt.Errorf("standby never took over")
	}
	fmt.Printf("\nstandby covered the outage: %d takeover(s), %v measured downtime, %d packets relayed\n",
		fo.Takeovers, fo.Downtime.Sum().Round(time.Second), fo.Standby.RecvDelivered)
	return nil
}
