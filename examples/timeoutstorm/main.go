// Timeoutstorm reproduces the paper's §V WebSocket-limit deployment
// challenge: a block with 1,000 transactions of 100 transfers each
// overflows the 16 MiB event frame, the relayer logs "failed to collect
// events", and with a packet-clear interval of zero most transfers get
// permanently stuck — neither completed nor timed out.
package main

import (
	"fmt"

	"ibcbench/internal/experiments"
)

func main() {
	res := experiments.WebSocketLimit(5, 1000, 60)
	total := float64(res.Transfers)
	fmt.Printf("transfers submitted: %d (1,000 txs x 100 msgs in one block)\n", res.Transfers)
	fmt.Printf("websocket frames lost: %d\n", res.FramesLost)
	fmt.Printf("completed: %5.1f%%   (paper:  2.5%%)\n", 100*float64(res.Completed)/total)
	fmt.Printf("timed out: %5.1f%%   (paper: 15.7%%)\n", 100*float64(res.TimedOut)/total)
	fmt.Printf("stuck:     %5.1f%%   (paper: 81.8%%)\n", 100*float64(res.Stuck)/total)
}
