// Batchtransfer reproduces the paper's Fig. 12 scenario: 5,000 cross-chain
// transfers submitted within one block, processed by the relayer in
// block batches, with the 13-step lifecycle breakdown printed at the end.
package main

import (
	"fmt"
	"os"

	"ibcbench/internal/experiments"
)

func main() {
	res := experiments.Fig12(5000, 42)
	fmt.Printf("5,000 transfers in one block: %d completed in %.0fs\n",
		res.Completed, res.Total.Seconds())
	fmt.Printf("%-28s %-10s %-10s\n", "step", "first(s)", "last(s)")
	for _, s := range res.Steps {
		fmt.Printf("%-28s %-10.1f %-10.1f\n", s.Step, s.First.Seconds(), s.Last.Seconds())
	}
	pulls := res.TransferDataPull + res.RecvDataPull
	fmt.Printf("RPC data pulls: %.0fs = %.0f%% of total (paper: 69%%)\n",
		pulls.Seconds(), 100*pulls.Seconds()/res.Total.Seconds())
	if res.Completed != res.Transfers {
		fmt.Fprintln(os.Stderr, "warning: not all transfers completed")
		os.Exit(1)
	}
}
