// Hubspoke: deploy a hub with three spokes — the Cosmos-Hub shape the
// paper's fixed two-chain testbed cannot express — sustain transfer
// traffic on every edge, and move a multi-hop batch spoke -> hub -> spoke
// as sequential IBC transfers, reporting per-edge and aggregate metrics.
package main

import (
	"fmt"
	"os"

	"ibcbench/internal/metrics"
	"ibcbench/internal/topo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	hub := topo.Hub(3) // node 0 = hub, spokes 1..3
	sc := topo.Scenario{
		Name:     "hubspoke",
		Topology: hub,
		// 5 rps out of the hub on every edge for 6 block windows.
		EdgeRates: map[int]int{0: 5, 1: 5, 2: 5},
		Windows:   6,
		// 50 tokens spoke-1 -> hub -> spoke-3, leg by leg.
		Routes: []topo.Route{{Path: []int{1, 0, 3}, Transfers: 50}},
	}
	res, err := sc.Run(42)
	if err != nil {
		return err
	}
	res.Render(os.Stdout)

	if res.RoutesCompleted != 1 {
		return fmt.Errorf("multi-hop route did not complete")
	}
	if res.Total[metrics.StatusCompleted] == 0 {
		return fmt.Errorf("no transfers completed")
	}
	fmt.Printf("\nspoke-to-spoke route delivered %d transfers across 2 legs\n", 50)
	return nil
}
