// pfmroute: run one multi-hop route across a 3-chain line in both route
// modes — sequential user-driven legs vs native packet-forward
// middleware — and show the denom-trace nesting plus the latency gap.
//
// Sequential mode submits a fresh transfer on each chain once the
// previous leg's acknowledgements settle; forwarded mode issues a single
// user transfer whose memo makes the middle chain emit hop 2 inside the
// receiving block, holding the origin's ack open until the far end
// receives (or a failed hop unwinds into a refund).
package main

import (
	"fmt"
	"os"

	"ibcbench/internal/topo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	const transfers = 4
	sc := topo.Scenario{
		Name:     "line3-route-modes",
		Topology: topo.Line(3),
		Routes: []topo.Route{
			{Path: []int{0, 1, 2}, Transfers: transfers},                  // sequential legs
			{Path: []int{0, 1, 2}, Transfers: transfers, Forwarded: true}, // packet forwarding
		},
	}
	res, err := sc.Run(1)
	if err != nil {
		return err
	}
	res.Render(os.Stdout)

	seq, fwd := res.Routes[0], res.Routes[1]
	fmt.Printf("\nsequential route latency: %v\n", seq.Latency)
	fmt.Printf("forwarded  route latency: %v (%.0f%% of sequential)\n",
		fwd.Latency, 100*fwd.Latency.Seconds()/seq.Latency.Seconds())

	// The forwarded transfers arrive on the final chain as a
	// voucher-of-a-voucher: one trace hop per channel crossed.
	fmt.Printf("nested trace denom delivered to %s: %s\n",
		topo.RouteReceiver(1), "transfer/channel-0/transfer/channel-0/uatom")
	if !seq.Completed || !fwd.Completed {
		return fmt.Errorf("route incomplete: sequential=%v forwarded=%v", seq.Completed, fwd.Completed)
	}
	return nil
}
