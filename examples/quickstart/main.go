// Quickstart: deploy two simulated Gaia chains linked by an IBC channel,
// run one Hermes-style relayer, and complete a single cross-chain token
// transfer end to end — the paper's minimal scenario (§II-B, Fig. 2).
package main

import (
	"fmt"
	"os"
	"time"

	"ibcbench/internal/framework"
	"ibcbench/internal/ibc/transfer"
	"ibcbench/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	// Setup: two 5-validator chains, 200 ms RTT, one relayer.
	env := framework.Setup(framework.SetupConfig{Seed: 1, Relayers: 1})

	// Benchmark: one fungible-token transfer.
	env.Scheduler().At(time.Second, func() { env.Workload.SubmitBatch(1) })
	if err := env.Run(2 * time.Minute); err != nil {
		return err
	}

	// Analysis.
	rep := env.Analyze("quickstart: one cross-chain transfer", env.Scheduler().Now())
	rep.Render(os.Stdout)
	lat := env.Tracker.CompletionTimes()
	if len(lat) == 1 {
		fmt.Printf("end-to-end latency: %.1fs (paper reports ~21s)\n", lat[0].Seconds())
	}
	voucher := transfer.VoucherPrefix("transfer", "channel-0") + "uatom"
	fmt.Printf("voucher minted on destination: %d %s\n",
		env.Testbed.Pair.B.App.Bank().Supply(voucher), voucher)
	if env.Tracker.CompletionCounts()[metrics.StatusCompleted] != 1 {
		return fmt.Errorf("transfer did not complete")
	}
	return nil
}
